package scoopqs_test

import (
	"fmt"
	"sync"

	"scoopqs"
)

// The basic vocabulary: a handler owns state; a client logs
// asynchronous calls and synchronous queries inside a separate block.
func Example() {
	rt := scoopqs.New(scoopqs.ConfigAll)
	defer rt.Shutdown()

	counter := rt.NewHandler("counter")
	n := 0 // owned by counter

	c := rt.NewClient()
	c.Separate(counter, func(s *scoopqs.Session) {
		s.Call(func() { n += 40 })
		s.Call(func() { n += 2 })
		fmt.Println(scoopqs.Query(s, func() int { return n }))
	})
	// Output: 42
}

// Reasoning guarantee 2: calls from one separate block execute with no
// interleaving from other clients, so a block's delta is exactly its
// own contribution.
func Example_noInterleaving() {
	rt := scoopqs.New(scoopqs.ConfigAll)
	defer rt.Shutdown()

	h := rt.NewHandler("acc")
	total := 0

	var wg sync.WaitGroup
	deltas := make(chan int, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := rt.NewClient()
			c.Separate(h, func(s *scoopqs.Session) {
				before := scoopqs.Query(s, func() int { return total })
				for i := 0; i < 100; i++ {
					s.Call(func() { total++ })
				}
				after := scoopqs.Query(s, func() int { return total })
				deltas <- after - before
			})
		}()
	}
	wg.Wait()
	close(deltas)
	for d := range deltas {
		fmt.Println(d)
	}
	// Output:
	// 100
	// 100
	// 100
	// 100
}

// Multi-handler reservations are atomic: an observer reserving the
// same pair can never see a transfer halfway done.
func Example_multiReservation() {
	rt := scoopqs.New(scoopqs.ConfigAll)
	defer rt.Shutdown()

	ha := rt.NewHandler("a")
	hb := rt.NewHandler("b")
	balA, balB := 100, 100

	c := rt.NewClient()
	c.SeparateMany([]*scoopqs.Handler{ha, hb}, func(ss []*scoopqs.Session) {
		ss[0].Call(func() { balA -= 30 })
		ss[1].Call(func() { balB += 30 })
	})
	c.SeparateMany([]*scoopqs.Handler{ha, hb}, func(ss []*scoopqs.Session) {
		a := scoopqs.Query(ss[0], func() int { return balA })
		b := scoopqs.Query(ss[1], func() int { return balB })
		fmt.Println(a, b, a+b)
	})
	// Output: 70 130 200
}

// Typed futures: QueryAsyncTyped logs an asynchronous query and hands
// back a typed view, so awaiting code gets (T, error) instead of
// (any, error) plus an assertion. Then/Map derive further futures; the
// whole pipeline resolves once the handler executes the query.
func Example_typedFutures() {
	rt := scoopqs.New(scoopqs.ConfigAll.WithWorkers(2))
	defer rt.Shutdown()

	counter := rt.NewHandler("counter")
	n := 0

	c := rt.NewClient()
	var doubled scoopqs.TypedFuture[int]
	c.Separate(counter, func(s *scoopqs.Session) {
		for i := 0; i < 5; i++ {
			s.Call(func() { n++ })
		}
		fut := scoopqs.QueryAsyncTyped(s, func() int { return n })
		doubled = fut.Then(func(v int) int { return v * 2 })
	})
	v, err := doubled.Get()
	fmt.Println(v, err)
	// Output: 10 <nil>
}

// Wait conditions: the block runs once its guard holds, re-evaluated
// whenever another client's block on the handler completes.
func Example_waitCondition() {
	rt := scoopqs.New(scoopqs.ConfigAll)
	defer rt.Shutdown()

	box := rt.NewHandler("box")
	var items []string

	got := make(chan string, 1)
	go func() {
		c := rt.NewClient()
		c.SeparateWhen([]*scoopqs.Handler{box},
			func(ss []*scoopqs.Session) bool {
				return scoopqs.Query(ss[0], func() bool { return len(items) > 0 })
			},
			func(ss []*scoopqs.Session) {
				got <- scoopqs.Query(ss[0], func() string { return items[0] })
			})
	}()

	c := rt.NewClient()
	c.Separate(box, func(s *scoopqs.Session) {
		s.Call(func() { items = append(items, "hello") })
	})
	fmt.Println(<-got)
	// Output: hello
}
