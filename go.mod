module scoopqs

go 1.24
