module scoopqs

go 1.22
