package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The -stats output is part of the tool's contract (CI and docs quote
// it); the golden file pins it. Regenerate with:
//
//	go run ./cmd/syncopt -stats -example fig14 > cmd/syncopt/testdata/fig14_stats.golden
func TestStatsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-stats", "-example", "fig14"}, &buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "fig14_stats.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("-stats output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestExamplesRun(t *testing.T) {
	for _, ex := range []string{"fig14", "fig15", "fig15noalias"} {
		t.Run(ex, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run([]string{"-report", "-stats", "-example", ex}, &buf); err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"; --- before ---", "; --- after sync-coalescing ---", "; --- report ---", "; --- stats ---"} {
				if !strings.Contains(buf.String(), want) {
					t.Errorf("output missing %q", want)
				}
			}
		})
	}
	// fig15 without aliasing info must keep every sync; with it, the
	// stats line must show the two eliminations.
	var buf bytes.Buffer
	if err := run([]string{"-stats", "-example", "fig15"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "syncs=3 eliminated=0 remaining=3") {
		t.Errorf("fig15 stats line wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-stats", "-example", "fig15noalias"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "syncs=3 eliminated=2 remaining=1") {
		t.Errorf("fig15noalias stats line wrong:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-example", "nope"}, &buf); err == nil {
		t.Error("unknown example did not error")
	}
	if err := run([]string{}, &buf); err == nil {
		t.Error("missing input did not error")
	}
	if err := run([]string{"does-not-exist.ir"}, &buf); err == nil {
		t.Error("missing file did not error")
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.ir")
	src := "func f() handlers(h) arrays() {\nentry:\n  sync h\n  sync h\n  ret\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-stats", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "syncs=2 eliminated=1 remaining=1") {
		t.Errorf("file input stats wrong:\n%s", buf.String())
	}
}
