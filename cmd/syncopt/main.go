// Command syncopt runs the static sync-coalescing pass (paper §3.4.2)
// on a textual IR function and prints the transformed function plus a
// report of the removed sync instructions and per-block sync-sets.
//
// Usage:
//
//	syncopt [-report] [-stats] file.ir
//	syncopt -example fig14|fig15|fig15noalias
//
// The -example flag prints one of the paper's worked examples (Figs.
// 14/15) before and after the pass. The -stats flag appends a compact
// per-function summary: how many syncs were eliminated, which, and the
// per-block sync-sets the decision was based on.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scoopqs/internal/compiler/ir"
	"scoopqs/internal/compiler/passes"
)

const fig14Src = `; Fig. 14: a copy loop with the naive sync-per-read code.
func fig14(n) handlers(h) arrays(x) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`

const fig15Src = `; Fig. 15: an extra async call on a possibly-aliased handler.
func fig15(n) handlers(h, ip) arrays(x) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  async ip put(i, v)
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`

const fig15NoAliasSrc = `; Fig. 15 with aliasing information: h and ip never alias.
func fig15na(n) handlers(h, ip) arrays(x) noalias(h, ip) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  async ip put(i, v)
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "syncopt: %v\n", err)
		os.Exit(1)
	}
}

// run is the command body, separated from main for testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("syncopt", flag.ContinueOnError)
	report := fs.Bool("report", false, "print removed syncs and per-block sync-sets")
	stats := fs.Bool("stats", false, "print per-function elimination counts and per-block sync-sets")
	example := fs.String("example", "", "print a built-in example: fig14, fig15, fig15noalias")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src string
	switch {
	case *example != "":
		switch *example {
		case "fig14":
			src = fig14Src
		case "fig15":
			src = fig15Src
		case "fig15noalias":
			src = fig15NoAliasSrc
		default:
			return fmt.Errorf("unknown example %q", *example)
		}
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	default:
		return fmt.Errorf("usage: syncopt [-report] [-stats] file.ir | syncopt -example fig14")
	}

	f, err := ir.Parse(src)
	if err != nil {
		return err
	}
	res, err := passes.Coalesce(f)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "; --- before ---")
	fmt.Fprint(out, f.String())
	fmt.Fprintln(out, "; --- after sync-coalescing ---")
	fmt.Fprint(out, res.Func.String())
	fmt.Fprintf(out, "; removed %d of %d sync instruction(s)\n",
		len(res.Removed), passes.CountSyncs(f))
	if *report {
		fmt.Fprintln(out, "; --- report ---")
		fmt.Fprint(out, "; "+res.String())
	}
	if *stats {
		printStats(out, f, res)
	}
	return nil
}

// printStats renders the -stats summary: the per-function elimination
// count and the per-block sync-sets (VarSet renders sorted, so the
// output is stable for golden tests).
func printStats(out io.Writer, f *ir.Func, res *passes.Result) {
	total := passes.CountSyncs(f)
	fmt.Fprintln(out, "; --- stats ---")
	fmt.Fprintf(out, "; func %s: syncs=%d eliminated=%d remaining=%d\n",
		f.Name, total, len(res.Removed), total-len(res.Removed))
	for _, rm := range res.Removed {
		fmt.Fprintf(out, ";   eliminated %s[%d]: sync %s\n", rm.Block, rm.Index, rm.Handler)
	}
	for _, b := range res.Func.Blocks {
		fmt.Fprintf(out, ";   syncset %s: in=%s out=%s\n", b.Name, res.Sets.In[b], res.Sets.Out[b])
	}
}
