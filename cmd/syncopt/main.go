// Command syncopt runs the static sync-coalescing pass (paper §3.4.2)
// on a textual IR function and prints the transformed function plus a
// report of the removed sync instructions and per-block sync-sets.
//
// Usage:
//
//	syncopt [-report] file.ir
//	syncopt -example fig14|fig15|fig15noalias
//
// The -example flag prints one of the paper's worked examples (Figs.
// 14/15) before and after the pass.
package main

import (
	"flag"
	"fmt"
	"os"

	"scoopqs/internal/compiler/ir"
	"scoopqs/internal/compiler/passes"
)

const fig14Src = `; Fig. 14: a copy loop with the naive sync-per-read code.
func fig14(n) handlers(h) arrays(x) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`

const fig15Src = `; Fig. 15: an extra async call on a possibly-aliased handler.
func fig15(n) handlers(h, ip) arrays(x) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  async ip put(i, v)
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`

const fig15NoAliasSrc = `; Fig. 15 with aliasing information: h and ip never alias.
func fig15na(n) handlers(h, ip) arrays(x) noalias(h, ip) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  async ip put(i, v)
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`

func main() {
	report := flag.Bool("report", false, "print removed syncs and per-block sync-sets")
	example := flag.String("example", "", "print a built-in example: fig14, fig15, fig15noalias")
	flag.Parse()

	var src string
	switch {
	case *example != "":
		switch *example {
		case "fig14":
			src = fig14Src
		case "fig15":
			src = fig15Src
		case "fig15noalias":
			src = fig15NoAliasSrc
		default:
			fatalf("unknown example %q", *example)
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		src = string(data)
	default:
		fatalf("usage: syncopt [-report] file.ir | syncopt -example fig14")
	}

	f, err := ir.Parse(src)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := passes.Coalesce(f)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println("; --- before ---")
	fmt.Print(f.String())
	fmt.Println("; --- after sync-coalescing ---")
	fmt.Print(res.Func.String())
	fmt.Printf("; removed %d of %d sync instruction(s)\n",
		len(res.Removed), passes.CountSyncs(f))
	if *report {
		fmt.Println("; --- report ---")
		fmt.Print("; " + res.String())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "syncopt: "+format+"\n", args...)
	os.Exit(1)
}
