// Command qsbench regenerates the tables and figures of the paper's
// evaluation (West, Nanz, Meyer: "Efficient and Reasonable
// Object-Oriented Concurrency", PPoPP 2015).
//
// Usage:
//
//	qsbench [flags]
//
//	-experiment all|table1|table2|table3|table4|table5|
//	            fig16|fig17|fig18|fig19|fig20|summary
//	-size      small|paper   problem sizes (paper sizes are large!)
//	-reps      N             repetitions per measurement (median)
//	-workers   N             worker/handler count at full width
//	-cores     1,2,4         worker sweep for fig19/table4
//
// Each experiment prints a text table with the same rows/columns as
// the paper's table or figure; EXPERIMENTS.md records the comparison
// against the published numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"scoopqs/internal/concbench"
	"scoopqs/internal/cowichan"
	"scoopqs/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run (all, table1..5, fig16..20, summary)")
	size := flag.String("size", "small", "problem sizes: small or paper")
	reps := flag.Int("reps", 3, "repetitions per measurement")
	workers := flag.Int("workers", 0, "workers/handlers (default: NumCPU, min 2)")
	cores := flag.String("cores", "", "comma-separated worker sweep for fig19/table4")
	flag.Parse()

	o := harness.Defaults(os.Stdout)
	o.Reps = *reps
	if *workers > 0 {
		o.Workers = *workers
	}
	switch *size {
	case "small":
	case "paper":
		o.Cow = cowichan.PaperParams()
		o.Conc = concbench.PaperParams()
		fmt.Fprintln(os.Stderr, "qsbench: paper sizes selected; expect long runs and ~GiB memory use")
	default:
		fatalf("unknown -size %q", *size)
	}
	if *cores != "" {
		o.Cores = nil
		for _, s := range strings.Split(*cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fatalf("bad -cores entry %q", s)
			}
			o.Cores = append(o.Cores, n)
		}
	}
	if err := o.Cow.Validate(); err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("qsbench: host CPUs=%d, workers=%d, reps=%d, cow=%+v, conc=%+v\n",
		runtime.NumCPU(), o.Workers, o.Reps, o.Cow, o.Conc)

	experiments := map[string]func(){
		"table1": o.Table1, "fig16": o.Fig16,
		"table2": o.Table2, "fig17": o.Fig17,
		"table3": o.Table3,
		"fig18":  o.Fig18, "fig19": o.Fig19, "table4": o.Table4,
		"table5": o.Table5, "fig20": o.Fig20,
		"eve":     o.Eve,
		"summary": o.Summary,
	}
	order := []string{"table1", "fig16", "table2", "fig17", "table3",
		"fig18", "fig19", "table4", "table5", "fig20", "eve", "summary"}

	if *experiment == "all" {
		for _, name := range order {
			experiments[name]()
		}
		return
	}
	f, ok := experiments[*experiment]
	if !ok {
		fatalf("unknown -experiment %q (want all, %s)", *experiment, strings.Join(order, ", "))
	}
	f()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qsbench: "+format+"\n", args...)
	os.Exit(1)
}
