// Command qsbench regenerates the tables and figures of the paper's
// evaluation (West, Nanz, Meyer: "Efficient and Reasonable
// Object-Oriented Concurrency", PPoPP 2015).
//
// Usage:
//
//	qsbench [flags]
//
//	-experiment NAME[,NAME...]  experiments to run; "all" runs every
//	            one in order. The canonical list lives in
//	            experimentOrder below (flag help and error messages are
//	            generated from it): the paper's tables and figures
//	            (table1..5, fig16..20), the repo's scheduler and
//	            transport studies (eve, executor, steal, futures,
//	            remote, flow, chaos, bank), the compiler-integration
//	            experiment (compile), the Cowichan suite on the
//	            unified scheduler (cowichan), and the roll-up
//	            (summary).
//	-json path  also write machine-readable results (experiment,
//	            config, medians, counters) for BENCH_*.json trajectory
//	            files
//	-trace path enable the internal/obs tracer for the whole run and
//	            export a Chrome trace_event JSON file at exit (load it
//	            in Perfetto or chrome://tracing)
//	-baseline path  prior BENCH_*.json the obs experiment gates its
//	            disabled-tracer overhead against
//	-flow-baseline path  prior BENCH_*.json the flow and remote
//	            experiments gate their throughput against (<=5% on a
//	            comparable host)
//	-seed N     seed for deterministic fault injection (the chaos
//	            experiment); recorded in -json metadata so failing
//	            runs replay exactly
//	-size      small|paper   problem sizes (paper sizes are large!)
//	-reps      N             repetitions per measurement (median)
//	-workers   N             worker/handler count at full width
//	-pool      N             Qs executor pool size (0 = dedicated
//	                         goroutine per handler, the paper's mode)
//	-config    Name          restrict the optimization sweeps to one
//	                         configuration (None|Dynamic|Static|QoQ|All)
//	-cores     1,2,4         worker sweep for fig19/table4
//
// Each experiment prints a text table with the same rows/columns as
// the paper's table or figure; EXPERIMENTS.md records the comparison
// against the published numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"scoopqs/internal/concbench"
	"scoopqs/internal/core"
	"scoopqs/internal/cowichan"
	"scoopqs/internal/harness"
	"scoopqs/internal/obs"
)

// experimentOrder is the canonical experiment list: the run order of
// -experiment all, and the source of the flag help and error text.
// Adding an experiment means adding it here and in experimentTable —
// main fails fast if the two drift apart.
var experimentOrder = []string{
	"table1", "fig16", "table2", "fig17", "table3",
	"fig18", "fig19", "table4", "table5", "fig20",
	"eve", "executor", "steal", "futures", "remote", "flow", "chaos",
	"bank", "compile", "cowichan", "obs", "summary",
}

// experimentTable binds each name to its Options method.
func experimentTable(o harness.Options) map[string]func() {
	return map[string]func(){
		"table1": o.Table1, "fig16": o.Fig16,
		"table2": o.Table2, "fig17": o.Fig17,
		"table3": o.Table3,
		"fig18":  o.Fig18, "fig19": o.Fig19, "table4": o.Table4,
		"table5": o.Table5, "fig20": o.Fig20,
		"eve":      o.Eve,
		"executor": o.Executor,
		"steal":    o.Steal,
		"futures":  o.Futures,
		"remote":   o.Remote,
		"flow":     o.Flow,
		"chaos":    o.Chaos,
		"bank":     o.Bank,
		"compile":  o.Compile,
		"cowichan": o.Cowichan,
		"obs":      o.Obs,
		"summary":  o.Summary,
	}
}

// configByName resolves the paper's configuration labels
// (case-insensitive; "Dyn." accepted for Dynamic).
func configByName(name string) (core.Config, bool) {
	switch strings.ToLower(strings.TrimSuffix(name, ".")) {
	case "none":
		return core.ConfigNone, true
	case "dynamic", "dyn":
		return core.ConfigDynamic, true
	case "static":
		return core.ConfigStatic, true
	case "qoq":
		return core.ConfigQoQ, true
	case "all":
		return core.ConfigAll, true
	}
	return core.Config{}, false
}

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: all, "+strings.Join(experimentOrder, ", ")+" (comma-separate to run several)")
	size := flag.String("size", "small", "problem sizes: small or paper")
	reps := flag.Int("reps", 3, "repetitions per measurement")
	workers := flag.Int("workers", 0, "workers/handlers (default: NumCPU, min 2)")
	pool := flag.Int("pool", 0, "Qs executor pool size (0 = dedicated goroutine per handler)")
	config := flag.String("config", "", "restrict optimization sweeps to one configuration (None, Dynamic, Static, QoQ, All)")
	cores := flag.String("cores", "", "comma-separated worker sweep for fig19/table4")
	jsonPath := flag.String("json", "", "also write machine-readable results (experiment, config, medians, counters) to this path")
	tracePath := flag.String("trace", "", "record internal/obs events for the whole run and write a Chrome trace_event JSON file here")
	baseline := flag.String("baseline", "BENCH_PR7_obs.json", "prior BENCH_*.json the obs experiment gates disabled-tracer overhead against")
	flowBaseline := flag.String("flow-baseline", "BENCH_PR5_flow.json", "prior BENCH_*.json the flow and remote experiments gate throughput against")
	seed := flag.Int64("seed", 1, "seed for deterministic fault injection (chaos experiment); recorded in -json metadata")
	flag.Parse()

	// Fail fast if the -json document shape drifted from its canonical
	// key list (same discipline as the experiment-list check below).
	if err := harness.SchemaSelfCheck(); err != nil {
		fatalf("%v", err)
	}

	o := harness.Defaults(os.Stdout)
	o.Reps = *reps
	if *workers > 0 {
		o.Workers = *workers
	}
	if *pool < 0 {
		fatalf("-pool must be >= 0")
	}
	o.Pool = *pool
	if *config != "" {
		cfg, ok := configByName(*config)
		if !ok {
			fatalf("unknown -config %q (want None, Dynamic, Static, QoQ, All)", *config)
		}
		o.Configs = []core.Config{cfg}
	}
	switch *size {
	case "small":
	case "paper":
		o.Cow = cowichan.PaperParams()
		o.Conc = concbench.PaperParams()
		fmt.Fprintln(os.Stderr, "qsbench: paper sizes selected; expect long runs and ~GiB memory use")
	default:
		fatalf("unknown -size %q", *size)
	}
	if *cores != "" {
		o.Cores = nil
		for _, s := range strings.Split(*cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fatalf("bad -cores entry %q", s)
			}
			o.Cores = append(o.Cores, n)
		}
	}
	if err := o.Cow.Validate(); err != nil {
		fatalf("%v", err)
	}
	if *jsonPath != "" {
		o.Rec = &harness.Recorder{Seed: *seed}
	}
	o.Baseline = *baseline
	o.FlowBaseline = *flowBaseline
	o.Seed = *seed
	if *tracePath != "" {
		obs.Enable()
	}

	fmt.Printf("qsbench: host CPUs=%d, workers=%d, reps=%d, cow=%+v, conc=%+v\n",
		runtime.NumCPU(), o.Workers, o.Reps, o.Cow, o.Conc)

	experiments := experimentTable(o)
	if len(experiments) != len(experimentOrder) {
		fatalf("experiment table and order list drifted (%d vs %d entries)", len(experiments), len(experimentOrder))
	}
	for _, n := range experimentOrder {
		if _, ok := experiments[n]; !ok {
			fatalf("experiment %q is in the order list but not the table", n)
		}
	}

	for _, name := range strings.Split(*experiment, ",") {
		name = strings.TrimSpace(name)
		if name == "all" {
			for _, n := range experimentOrder {
				experiments[n]()
			}
			continue
		}
		f, ok := experiments[name]
		if !ok {
			fatalf("unknown -experiment %q (want all, %s)", name, strings.Join(experimentOrder, ", "))
		}
		f()
	}
	if *jsonPath != "" {
		if err := o.Rec.WriteFile(*jsonPath); err != nil {
			fatalf("writing -json file: %v", err)
		}
		fmt.Fprintf(os.Stderr, "qsbench: wrote %d result rows to %s\n", len(o.Rec.Results), *jsonPath)
	}
	if *tracePath != "" {
		// Disable before export for a consistent snapshot (live emitters
		// would otherwise tear records mid-copy).
		obs.Disable()
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("creating -trace file: %v", err)
		}
		if err := obs.WriteChromeTrace(f); err != nil {
			fatalf("writing -trace file: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing -trace file: %v", err)
		}
		kinds := obs.KindCounts()
		fmt.Fprintf(os.Stderr, "qsbench: wrote %d trace events (%d kinds) to %s\n",
			obs.EventCount(), len(kinds), *tracePath)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qsbench: "+format+"\n", args...)
	os.Exit(1)
}
